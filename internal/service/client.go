package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"a4sim/internal/scenario"
)

// Client is the typed Go client for the a4serve HTTP API — the one place
// request encoding, response decoding, and status-to-error translation
// live, so cmd/a4top, the load generators, and the test suites all talk to
// a daemon (or coordinator: the API is identical) through the same surface
// instead of four hand-rolled HTTP snippets. Every non-2xx answer comes
// back through ErrFromStatus, the inverse of StatusForErr, so a remote
// failure is the same Go error the local Service would have returned.
type Client struct {
	base string
	hc   *http.Client
}

// NewTransport returns an http.Transport tuned for hammering one daemon
// with up to maxConns concurrent requests. The stdlib default keeps only
// two idle connections per host (MaxIdleConnsPerHost=2), so any real
// concurrency churns through TCP setup and TIME_WAIT sockets; sizing the
// idle pool to the in-flight cap keeps every connection alive and reused.
// MaxConnsPerHost bounds total dials at the same cap, so a misbehaving
// burst queues on the transport instead of stampeding the listener.
func NewTransport(maxConns int) *http.Transport {
	if maxConns <= 0 {
		maxConns = 64
	}
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConnsPerHost = maxConns
	t.MaxConnsPerHost = maxConns
	t.MaxIdleConns = 0 // no global cap; the per-host caps govern
	return t
}

// NewClient returns a client for the daemon at base. A nil hc gets a
// 60-second-timeout client over a keep-alive transport sized for 64
// concurrent requests, enough for cache hits and budget-bounded runs;
// callers issuing long sweeps or higher concurrency should pass their own.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second, Transport: NewTransport(0)}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// URL returns the client's base URL, normalized (no trailing slash).
func (c *Client) URL() string { return c.base }

// Run submits one spec and returns the served result.
func (c *Client) Run(sp *scenario.Spec) (Result, error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return Result{}, err
	}
	return c.RunBytes(body)
}

// RunBytes submits a pre-encoded spec body — the hot path for load
// generators that marshal their request population once.
func (c *Client) RunBytes(body []byte) (Result, error) {
	return c.postResult("/run", body)
}

// Extend re-runs the spec served under hash with a different measurement
// window (POST /extend). Unknown hashes return ErrUnknownHash.
func (c *Client) Extend(hash string, measureSec float64) (Result, error) {
	body, err := json.Marshal(ExtendRequest{Hash: hash, MeasureSec: measureSec})
	if err != nil {
		return Result{}, err
	}
	return c.postResult("/extend", body)
}

// ExtendBytes posts a pre-encoded extend body (see RunBytes).
func (c *Client) ExtendBytes(body []byte) (Result, error) {
	return c.postResult("/extend", body)
}

// Sweep posts one sweep request and decodes the grid points in order.
func (c *Client) Sweep(req *SweepRequest) ([]SweepPoint, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.SweepBytes(body)
}

// SweepBytes posts a pre-encoded sweep body (see RunBytes).
func (c *Client) SweepBytes(body []byte) ([]SweepPoint, error) {
	data, err := c.do(http.MethodPost, "/sweep", body)
	if err != nil {
		return nil, err
	}
	var out struct {
		Points []struct {
			Grid   map[string]any  `json:"grid"`
			Hash   string          `json:"hash"`
			Cached bool            `json:"cached"`
			Report json.RawMessage `json:"report"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("service: client: decode sweep response: %w", err)
	}
	points := make([]SweepPoint, len(out.Points))
	for i, p := range out.Points {
		points[i] = SweepPoint{Grid: p.Grid, Hash: p.Hash, Cached: p.Cached, Report: p.Report}
	}
	return points, nil
}

// Result fetches a cached report by content address (GET /result/<hash>).
func (c *Client) Result(hash string) ([]byte, error) {
	return c.do(http.MethodGet, "/result/"+hash, nil)
}

// Series fetches a run's per-second telemetry by content address
// (GET /series/<hash>). Runs without a series block return ErrUnknownHash,
// exactly as the server reports them.
func (c *Client) Series(hash string) ([]byte, error) {
	return c.do(http.MethodGet, "/series/"+hash, nil)
}

// SeriesStream opens the run's live SSE stream (GET /series/<hash>/stream)
// and hands the caller the raw body to scan. The stream outlives any
// sensible request timeout, so it uses a copy of the caller's client with
// only the overall timeout cleared — transport, redirect policy, and
// cookie jar all survive the clone (copying just the Transport used to
// silently drop them).
func (c *Client) SeriesStream(hash string) (io.ReadCloser, error) {
	sc := *c.hc
	sc.Timeout = 0
	resp, err := sc.Get(c.base + "/series/" + hash + "/stream")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, ErrFromStatus(resp.StatusCode, data)
	}
	return resp.Body, nil
}

// ClientStats is the /stats payload as a client sees it: the fleet-summed
// counters plus, when the target is a coordinator, its per-backend list
// (left raw — the client does not depend on internal/cluster).
type ClientStats struct {
	Stats
	Backends []json.RawMessage `json:"backends"`
}

// Stats fetches the daemon's counters. The second return is the backend
// count: zero for a single node, len(backends) for a coordinator.
func (c *Client) Stats() (Stats, int, error) {
	data, err := c.do(http.MethodGet, "/stats", nil)
	if err != nil {
		return Stats{}, 0, err
	}
	var st ClientStats
	if err := json.Unmarshal(data, &st); err != nil {
		return Stats{}, 0, fmt.Errorf("service: client: decode stats: %w", err)
	}
	return st.Stats, len(st.Backends), nil
}

// Healthz probes liveness; a draining or dead daemon returns an error.
func (c *Client) Healthz() error {
	_, err := c.do(http.MethodGet, "/healthz", nil)
	return err
}

// Issue sends one pre-rendered request and drains the response without
// decoding or retaining it — the load-generator hot path, where only the
// outcome matters and per-request JSON decoding would bill client CPU to
// the server under test. Non-2xx answers go through ErrFromStatus exactly
// like the typed methods, so callers classify failures identically.
func (c *Client) Issue(method, path string, body []byte) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return ErrFromStatus(resp.StatusCode, data)
	}
	// Drain fully so the keep-alive connection is reusable.
	_, err = io.Copy(io.Discard, io.LimitReader(resp.Body, maxClientResponseBytes))
	return err
}

// postResult posts body and decodes the {hash, cached, report} envelope
// shared by /run and /extend.
func (c *Client) postResult(path string, body []byte) (Result, error) {
	data, err := c.do(http.MethodPost, path, body)
	if err != nil {
		return Result{}, err
	}
	var wr struct {
		Hash   string          `json:"hash"`
		Cached bool            `json:"cached"`
		Report json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal(data, &wr); err != nil {
		return Result{}, fmt.Errorf("service: client: decode %s response: %w", path, err)
	}
	return Result{Hash: wr.Hash, Cached: wr.Cached, Report: wr.Report}, nil
}

// maxClientResponseBytes bounds one response read, mirroring the cluster
// coordinator's own cap on backend answers.
const maxClientResponseBytes = 16 << 20

func (c *Client) do(method, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxClientResponseBytes))
	if err != nil {
		return nil, fmt.Errorf("service: client: reading %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, ErrFromStatus(resp.StatusCode, data)
	}
	return data, nil
}

// ErrorBody is the JSON error envelope every a4serve endpoint emits for
// non-2xx answers: the message, the status it rode in on, and — when the
// failure concerns a specific run — its content address.
type ErrorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
	Hash   string `json:"hash,omitempty"`
}

// APIError is a server rejection that maps to no taxonomy sentinel — a
// spec rejected before running (422), a malformed body (400), an oversized
// one (413). StatusForErr round-trips it to its original status, so a
// coordinator forwarding a backend's rejection preserves the code exactly.
type APIError struct {
	Status int
	Msg    string
	Hash   string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("status %d: %s", e.Status, e.Msg)
}

// ErrFromStatus translates an HTTP error answer back into the service
// error taxonomy — the inverse of StatusForErr, so client-side callers
// branch on the same sentinels (ErrUnknownHash, ErrBusy, ErrUnavailable,
// *RunError) whether the service is in-process or across the network.
func ErrFromStatus(status int, body []byte) error {
	eb := DecodeErrorBody(body)
	switch status {
	case http.StatusNotFound:
		return fmt.Errorf("%s: %w", eb.Error, ErrUnknownHash)
	case http.StatusTooManyRequests:
		return fmt.Errorf("%s: %w", eb.Error, ErrBusy)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%s: %w", eb.Error, ErrUnavailable)
	case http.StatusInternalServerError:
		return &RunError{Hash: eb.Hash, Err: errors.New(eb.Error)}
	default:
		return &APIError{Status: status, Msg: eb.Error, Hash: eb.Hash}
	}
}

// DecodeErrorBody parses the error envelope, tolerating legacy or foreign
// bodies by falling back to the (trimmed, bounded) raw text.
func DecodeErrorBody(body []byte) ErrorBody {
	var eb ErrorBody
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return eb
	}
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200] + "…"
	}
	if s == "" {
		s = "(empty response)"
	}
	return ErrorBody{Error: s}
}
