package service

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"a4sim/internal/scenario"
)

// testSpec is a fast-running scenario (high rate scale, short windows).
func testSpec(seed uint64) *scenario.Spec {
	return &scenario.Spec{
		Name:       "svc-test",
		Manager:    "a4-d",
		Params:     scenario.ParamSpec{RateScale: 8192, Seed: seed},
		WarmupSec:  1,
		MeasureSec: 1,
		Workloads: []scenario.WorkloadSpec{
			{Kind: "dpdk", Name: "dpdk-t", Cores: []int{0, 1}, Priority: "hpw", Touch: true},
			{Kind: "xmem", Name: "xmem", Cores: []int{2}, Priority: "lpw", WSKB: 1024, Pattern: "random"},
		},
	}
}

func TestSubmitCachesByHash(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()

	r1, err := svc.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Error("first submission reported cached")
	}
	r2, err := svc.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("second identical submission not served from cache")
	}
	if r1.Hash != r2.Hash {
		t.Fatalf("hash changed between submissions: %s vs %s", r1.Hash, r2.Hash)
	}
	if !bytes.Equal(r1.Report, r2.Report) {
		t.Fatal("cached report differs from executed report")
	}

	st := svc.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Executions != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 execution", st)
	}

	// The cache serves by content address too.
	if rep, ok := svc.Lookup(r1.Hash); !ok || !bytes.Equal(rep, r1.Report) {
		t.Error("Lookup by hash did not return the cached report")
	}
	if _, ok := svc.Lookup("deadbeef"); ok {
		t.Error("Lookup invented a result")
	}
}

func TestCachedReportByteIdenticalToFreshSerialRun(t *testing.T) {
	svc := New(Config{Workers: 4})
	defer svc.Close()

	res, err := svc.Submit(testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := svc.Submit(testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Fatal("second submission was not a cache hit")
	}

	// A fresh, serial, out-of-band run of the same spec must reproduce the
	// served bytes exactly — the determinism that makes caching sound.
	rep, err := testSpec(3).Run()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cached.Report, fresh) {
		t.Fatalf("cached report differs from fresh serial run:\n%s\nvs\n%s", cached.Report, fresh)
	}
	if rep.Hash != res.Hash {
		t.Fatalf("fresh run hash %s != served hash %s", rep.Hash, res.Hash)
	}
}

func TestConcurrentIdenticalSubmissionsExecuteOnce(t *testing.T) {
	svc := New(Config{Workers: 4})
	defer svc.Close()

	const clients = 8
	results := make([]Result, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Submit(testSpec(2))
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i].Report, results[0].Report) {
			t.Fatalf("client %d saw a different report", i)
		}
	}
	st := svc.Stats()
	if st.Executions != 1 {
		t.Errorf("%d concurrent identical submissions ran %d executions, want 1", clients, st.Executions)
	}
	if st.Dedups+st.Hits != clients-1 {
		t.Errorf("stats = %+v, want dedups+hits = %d", st, clients-1)
	}
}

func TestSweepDeterministicAtAnyWorkerCount(t *testing.T) {
	req := func() *SweepRequest {
		return &SweepRequest{
			Spec: *testSpec(1),
			Axes: []Axis{
				{Param: "manager", Managers: []string{"default", "a4-d"}},
				{Param: "nic_gbps", Values: []float64{50, 100}},
			},
		}
	}

	run := func(workers int) []SweepPoint {
		svc := New(Config{Workers: workers})
		defer svc.Close()
		points, err := svc.Sweep(req())
		if err != nil {
			t.Fatal(err)
		}
		return points
	}

	serial := run(1)
	if len(serial) != 4 {
		t.Fatalf("expected 4 grid points, got %d", len(serial))
	}
	for _, workers := range []int{2, 4} {
		parallel := run(workers)
		for i := range serial {
			if serial[i].Hash != parallel[i].Hash {
				t.Fatalf("workers=%d reordered point %d: %s vs %s",
					workers, i, serial[i].Hash, parallel[i].Hash)
			}
			if !bytes.Equal(serial[i].Report, parallel[i].Report) {
				t.Fatalf("workers=%d: point %d report differs from serial", workers, i)
			}
		}
	}
	// Grid labels follow row-major axis order.
	if serial[0].Grid["manager"] != "default" || serial[0].Grid["nic_gbps"] != 50.0 {
		t.Errorf("unexpected first grid point %v", serial[0].Grid)
	}
	if serial[3].Grid["manager"] != "a4-d" || serial[3].Grid["nic_gbps"] != 100.0 {
		t.Errorf("unexpected last grid point %v", serial[3].Grid)
	}
}

func TestSweepSharesCacheAcrossPoints(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()

	req := &SweepRequest{
		Spec: *testSpec(1),
		Axes: []Axis{{Param: "manager", Managers: []string{"default", "a4-d"}}},
	}
	if _, err := svc.Sweep(req); err != nil {
		t.Fatal(err)
	}
	points, err := svc.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if !p.Cached {
			t.Errorf("re-swept point %d not served from cache", i)
		}
	}
	if st := svc.Stats(); st.Executions != 2 {
		t.Errorf("re-sweep re-executed: %+v", st)
	}
}

func TestSweepRejectsBadGrid(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()

	if _, err := svc.Sweep(&SweepRequest{Spec: *testSpec(1)}); err == nil {
		t.Error("sweep with no axes accepted")
	}
	if _, err := svc.Sweep(&SweepRequest{
		Spec: *testSpec(1),
		Axes: []Axis{{Param: "voltage", Values: []float64{1}}},
	}); err == nil {
		t.Error("sweep with unknown param accepted")
	}
	if _, err := svc.Sweep(&SweepRequest{
		Spec: *testSpec(1),
		Axes: []Axis{
			{Param: "seed", Values: []float64{1, 2}},
			{Param: "seed", Values: []float64{3, 4}},
		},
	}); err == nil {
		t.Error("sweep with duplicate axis param accepted")
	}
	// Value 0 would silently run the default under a lying grid label.
	if _, err := svc.Sweep(&SweepRequest{
		Spec: *testSpec(1),
		Axes: []Axis{{Param: "warmup_sec", Values: []float64{0, 1}}},
	}); err == nil {
		t.Error("sweep with zero axis value accepted")
	}
	// A cartesian blowup is rejected before any allocation or execution.
	wide := make([]float64, 100)
	for i := range wide {
		wide[i] = float64(i + 1)
	}
	if _, err := svc.Sweep(&SweepRequest{
		Spec: *testSpec(1),
		Axes: []Axis{
			{Param: "seed", Values: wide},
			{Param: "nic_gbps", Values: wide},
			{Param: "ssd_gbps", Values: wide},
		},
	}); err == nil {
		t.Error("oversized sweep grid accepted")
	}
	// A grid that contains an invalid point fails before any execution.
	bad := &SweepRequest{
		Spec: *testSpec(1),
		Axes: []Axis{{Param: "manager", Managers: []string{"default", "bogus"}}},
	}
	if _, err := svc.Sweep(bad); err == nil {
		t.Error("sweep with invalid manager point accepted")
	}
	if st := svc.Stats(); st.Executions != 0 {
		t.Errorf("invalid sweeps executed points: %+v", st)
	}
}

func TestSubmitInvalidSpecFails(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	sp := testSpec(1)
	sp.Manager = "bogus"
	if _, err := svc.Submit(sp); err == nil {
		t.Fatal("invalid spec accepted")
	}
	// A valid but over-budget spec is a serving-policy rejection.
	over := testSpec(1)
	over.Params.RateScale = 1
	over.WarmupSec, over.MeasureSec = 3000, 600
	if err := over.Validate(); err != nil {
		t.Fatalf("over-budget spec should be valid: %v", err)
	}
	if _, err := svc.Submit(over); err == nil {
		t.Fatal("over-budget spec accepted")
	}
	if st := svc.Stats(); st.Errors != 2 || st.Executions != 0 {
		t.Errorf("stats = %+v, want 2 errors and no executions", st)
	}
}

func TestLRUEviction(t *testing.T) {
	svc := New(Config{Workers: 2, CacheEntries: 2})
	defer svc.Close()

	hashes := make([]string, 3)
	for i := range hashes {
		res, err := svc.Submit(testSpec(uint64(10 + i)))
		if err != nil {
			t.Fatal(err)
		}
		hashes[i] = res.Hash
	}
	if _, ok := svc.Lookup(hashes[0]); ok {
		t.Error("oldest entry survived beyond cache capacity")
	}
	if _, ok := svc.Lookup(hashes[2]); !ok {
		t.Error("newest entry evicted")
	}
	// Evicted specs re-execute and re-enter the cache.
	res, err := svc.Submit(testSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("evicted spec served from cache")
	}
}

func TestLRUUnit(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", []byte("1"), []byte("sa"), nil, nil)
	c.put("b", []byte("2"), []byte("sb"), nil, nil)
	c.get("a") // refresh a; b is now oldest
	c.put("c", []byte("3"), []byte("sc"), nil, nil)
	if _, ok := c.get("b"); ok {
		t.Error("LRU evicted the recently-used entry instead of the oldest")
	}
	e, ok := c.get("a")
	if !ok {
		t.Error("refreshed entry was evicted")
	} else if string(e.data) != "1" {
		t.Errorf("entry data = %q, want %q", e.data, "1")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Entries carry their pre-encoded cache-hit response body.
	if want := string(encodeResultEnvelope("a", true, []byte("1"))); string(e.hitBody) != want {
		t.Errorf("hitBody = %q, want %q", e.hitBody, want)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	svc := New(Config{Workers: 1, MaxQueue: 1})
	defer svc.Close()

	// Fill the queue without signalling, so the worker stays asleep (Go
	// conds have no spurious wakeups) and the state is deterministic.
	svc.qmu.Lock()
	svc.queue = append(svc.queue, func() {})
	svc.qmu.Unlock()

	if _, err := svc.Submit(testSpec(1)); err != ErrBusy {
		t.Fatalf("got %v, want ErrBusy", err)
	}
	st := svc.Stats()
	if st.Errors != 1 || st.Executions != 0 {
		t.Errorf("stats = %+v, want 1 error, 0 executions", st)
	}
}

func TestClosedServiceRejectsSubmissions(t *testing.T) {
	svc := New(Config{Workers: 1})
	svc.Close()
	svc.Close() // idempotent
	if _, err := svc.Submit(testSpec(1)); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func BenchmarkSubmitCached(b *testing.B) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	sp := testSpec(1)
	if _, err := svc.Submit(sp); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Submit(sp)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Cached {
			b.Fatal("not cached")
		}
	}
	st := svc.Stats()
	b.ReportMetric(float64(st.Hits)/float64(b.N), "hits/op")
	_ = fmt.Sprintf("%v", st)
}
