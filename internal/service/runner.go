package service

import (
	"errors"

	"a4sim/internal/scenario"
)

// Runner is the execution surface a serving front-end needs: submit one
// spec, extend a served run by content address, expand-and-run a sweep
// grid, and retrieve cached reports and their per-second telemetry. The
// local Service implements it with its in-process worker pool;
// internal/cluster's Coordinator implements it by sharding over remote
// a4serve backends. Because both sides honour the determinism contract
// (same spec hash, same report bytes, same series bytes), callers —
// cmd/a4serve's HTTP mux, figures.RunSpecs — cannot observe which one they
// are talking to except through latency and stats.
type Runner interface {
	Submit(sp *scenario.Spec) (Result, error)
	Extend(hash string, measureSec float64) (Result, error)
	Sweep(req *SweepRequest) ([]SweepPoint, error)
	Lookup(hash string) ([]byte, bool)
	// Series returns the canonical per-second series of a cached run, or
	// false when the hash is unknown or the run recorded no series.
	Series(hash string) ([]byte, bool)
}

// ErrUnavailable means no execution capacity is reachable right now (every
// cluster backend down, for instance). The HTTP layer maps it to 503: the
// submission was not run and may be retried against a healthier fleet.
var ErrUnavailable = errors.New("service: no execution capacity available")

// Statically pin that the local pool satisfies the shared surface.
var _ Runner = (*Service)(nil)

// ExpandSweep expands req's cartesian grid into one spec and grid label per
// point, in row-major axis order. It is the same expansion Sweep performs;
// the cluster coordinator calls it directly so it can route individual
// points to backends instead of forwarding the whole grid to one node.
func ExpandSweep(req *SweepRequest) ([]*scenario.Spec, []map[string]any, error) {
	return expand(req)
}

// GroupSpecsByPrefix partitions spec indices into groups sharing a run
// prefix (see Spec.PrefixHash), each group sorted by ascending measurement
// window. Running a group's points sequentially against one executor lets
// each later point fork the warm snapshot its predecessor deposited; the
// cluster coordinator uses the same grouping to keep a prefix's points on
// one backend.
func GroupSpecsByPrefix(specs []*scenario.Spec) [][]int {
	return groupByPrefix(specs)
}
