package service

import (
	"fmt"
	"math"

	"a4sim/internal/codec"
	"a4sim/internal/harness"
	"a4sim/internal/scenario"
	"a4sim/internal/store"
)

// The disk plane: glue between the in-memory caches and the durable
// content-addressed store. Reports, specs, and series are true
// content-addressed objects under the run's hash; warm snapshots are keyed
// objects under the prefix hash, wrapped with the measured seconds and the
// canonical spec that rebuilds their structural skeleton. Everything read
// back is verified (the store re-hashes payloads; snapshots additionally
// re-validate structure during decode), and every failure degrades to
// re-execution — the disk accelerates restarts and handoffs, it is never
// trusted over the simulator.

// diskResult serves hash from the durable store, repopulating the LRU so
// subsequent retrievals stay in memory. Objects are small and reads are
// verified-and-done; this path only runs after a memory miss that would
// otherwise cost a multi-second execution. Safe to call with fmu held (the
// cache put nests fmu -> cache.mu, the one permitted nesting).
func (s *Service) diskResult(hash string) (Result, bool) {
	data, ok := s.disk.Get(store.KindReport, hash)
	if !ok {
		return Result{}, false
	}
	spec, _ := s.disk.Get(store.KindSpec, hash)
	series, _ := s.disk.Get(store.KindSeries, hash)
	s.ctr.storeHits.Add(1)
	e := s.cache.put(hash, data, spec, series, nil)
	return Result{Hash: hash, Cached: true, Report: data, Envelope: e.hitBody}, true
}

// snapWrap is the on-disk and on-wire framing of a warm snapshot: how many
// measured seconds it holds, the canonical spec that rebuilds its
// structural skeleton, and the encoded harness state. One format serves
// both the store's snap objects and the cluster's handoff bodies.
const (
	snapWrapMagic   = "A4SW"
	snapWrapVersion = 1
)

func encodeSnapWrap(measured float64, spec, snap []byte) []byte {
	w := &codec.Writer{}
	w.Raw([]byte(snapWrapMagic))
	w.U32(snapWrapVersion)
	w.F64(measured)
	w.Blob(spec)
	w.Blob(snap)
	return w.Bytes()
}

func decodeSnapWrap(data []byte) (measured float64, spec, snap []byte, err error) {
	r := codec.NewReader(data)
	if string(r.Raw(len(snapWrapMagic))) != snapWrapMagic {
		return 0, nil, nil, fmt.Errorf("service: not a wrapped snapshot (bad magic)")
	}
	if v := r.U32(); r.Err() == nil && v != snapWrapVersion {
		return 0, nil, nil, fmt.Errorf("service: wrapped snapshot version %d, want %d", v, snapWrapVersion)
	}
	measured = r.F64()
	spec = r.Blob()
	snap = r.Blob()
	if err := r.Err(); err != nil {
		return 0, nil, nil, err
	}
	if n := r.Remaining(); n != 0 {
		return 0, nil, nil, fmt.Errorf("service: wrapped snapshot has %d trailing bytes", n)
	}
	return measured, spec, snap, nil
}

// depositSnap stores a warm snapshot in the memory cache and, when that
// actually advanced the prefix's state, mirrors it to the durable store.
// The disk write is best-effort and ordered after the memory decision;
// concurrent advances can at worst leave disk one step behind memory, which
// costs re-simulation after a restart, never a wrong result.
func (s *Service) depositSnap(prefix string, snap *harness.Snapshot, measured float64, spec []byte) {
	if s.snaps == nil {
		return
	}
	advanced := s.snaps.put(prefix, snap, measured, spec)
	if !advanced || s.disk == nil {
		return
	}
	data, err := snap.Encode()
	if err != nil {
		return
	}
	s.disk.Replace(store.KindSnap, prefix, encodeSnapWrap(measured, spec, data))
}

// diskSnapshot rehydrates the warm snapshot stored under prefix: unwrap,
// rebuild the structural skeleton from the wrapped spec, and decode the
// state onto it. Any failure reports a miss and the caller re-executes.
func (s *Service) diskSnapshot(prefix string) (*harness.Snapshot, float64, []byte, bool) {
	data, ok := s.disk.Get(store.KindSnap, prefix)
	if !ok {
		return nil, 0, nil, false
	}
	snap, measured, spec, err := decodeWrappedSnapshot(prefix, data)
	if err != nil {
		return nil, 0, nil, false
	}
	return snap, measured, spec, true
}

// decodeWrappedSnapshot validates and decodes one wrapped snapshot against
// its claimed prefix: the wrapped spec must actually hash to that prefix
// (so a misfiled or maliciously shipped snapshot cannot impersonate another
// scenario), the measured window must be a whole positive second (the
// snapshot-eligibility invariant), and the harness decode re-validates
// structure byte by byte.
func decodeWrappedSnapshot(prefix string, data []byte) (*harness.Snapshot, float64, []byte, error) {
	measured, specBytes, snapBytes, err := decodeSnapWrap(data)
	if err != nil {
		return nil, 0, nil, err
	}
	if measured < 1 || measured != math.Trunc(measured) || measured > scenario.MaxWindowSec {
		return nil, 0, nil, fmt.Errorf("service: wrapped snapshot measured %g seconds", measured)
	}
	sp, err := scenario.Parse(specBytes)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("service: wrapped snapshot spec: %w", err)
	}
	p, err := sp.PrefixHash()
	if err != nil {
		return nil, 0, nil, err
	}
	if p != prefix {
		return nil, 0, nil, fmt.Errorf("service: wrapped snapshot prefix %.12s does not match %.12s", p, prefix)
	}
	canon, err := sp.Canonical()
	if err != nil {
		return nil, 0, nil, err
	}
	skel, err := sp.Start()
	if err != nil {
		return nil, 0, nil, err
	}
	snap, err := harness.DecodeSnapshot(snapBytes, skel)
	if err != nil {
		return nil, 0, nil, err
	}
	return snap, measured, canon, nil
}

// SnapshotBytes exports the warm snapshot for prefix in wrapped form — the
// body the cluster ships on a handoff. Memory is preferred (freshest);
// otherwise the durable store's copy is forwarded as-is.
func (s *Service) SnapshotBytes(prefix string) ([]byte, bool) {
	if s.snaps != nil {
		if snap, measured, spec, ok := s.snaps.get(prefix); ok {
			if data, err := snap.Encode(); err == nil {
				return encodeSnapWrap(measured, spec, data), true
			}
		}
	}
	if s.disk != nil {
		if data, ok := s.disk.Get(store.KindSnap, prefix); ok {
			return data, true
		}
	}
	return nil, false
}

// InstallSnapshot accepts a wrapped snapshot shipped by a coordinator and
// seeds the warm-state caches with it. The decode is eager and fully
// validated before anything is stored: corrupt, truncated, or mismatched
// bytes are rejected here, and the importing node simply re-executes — a
// bad handoff can waste a transfer, never corrupt a result.
func (s *Service) InstallSnapshot(prefix string, data []byte) error {
	if s.snaps == nil {
		return fmt.Errorf("service: snapshot reuse disabled")
	}
	snap, measured, canon, err := decodeWrappedSnapshot(prefix, data)
	if err != nil {
		return err
	}
	s.depositSnap(prefix, snap, measured, canon)
	return nil
}
