// Package service turns scenario execution into a served resource: a job
// queue drained by a fixed worker pool (the figures sweep-runner pattern),
// fronted by singleflight deduplication and an LRU result cache keyed by
// the spec's content hash. Because the simulation is deterministic, a hash
// fully identifies its report, so serving a cached or deduplicated result
// is indistinguishable from re-running the scenario — that invariant is
// what makes the cache sound, and internal/service's tests pin it.
package service

import (
	"container/list"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"a4sim/internal/scenario"
)

// Config sizes the service.
type Config struct {
	// Workers is the execution pool degree; 0 means GOMAXPROCS.
	Workers int
	// CacheEntries caps the result cache; 0 means 256.
	CacheEntries int
	// MaxQueue caps jobs waiting for a worker; submissions beyond it fail
	// fast with ErrBusy instead of growing memory without bound. 0 means
	// 4096 (one full-size sweep).
	MaxQueue int
}

// Stats are the service's monotonic counters, served by /stats.
type Stats struct {
	Hits       uint64 `json:"hits"`       // served from the result cache
	Misses     uint64 `json:"misses"`     // required an execution
	Dedups     uint64 `json:"dedups"`     // coalesced onto an in-flight run
	Executions uint64 `json:"executions"` // scenario runs actually performed
	Errors     uint64 `json:"errors"`     // failed submissions
	Entries    int    `json:"entries"`    // current cache entries
	Workers    int    `json:"workers"`    // pool degree
	Queued     int    `json:"queued"`     // jobs waiting for a worker
}

// Result is one served submission.
type Result struct {
	// Hash is the spec's content address.
	Hash string
	// Cached reports whether the bytes came from the result cache (true) or
	// a fresh execution (false); deduplicated waiters see Cached=false, as
	// they paid for (a share of) the run.
	Cached bool
	// Report is the canonical report encoding; byte-identical for equal
	// hashes.
	Report []byte
}

// flight is one in-progress execution that concurrent identical
// submissions wait on.
type flight struct {
	done   chan struct{}
	report []byte
	err    error
}

// Service serves scenario runs.
type Service struct {
	workers  int
	maxQueue int
	wg       sync.WaitGroup

	mu       sync.Mutex
	work     *sync.Cond // signals queue growth or close
	queue    []func()
	inflight map[string]*flight
	cache    *lruCache
	stats    Stats
	closed   bool
}

// New starts a service with cfg's pool and cache.
func New(cfg Config) *Service {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	entries := cfg.CacheEntries
	if entries <= 0 {
		entries = 256
	}
	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = MaxSweepPoints
	}
	s := &Service{
		workers:  w,
		maxQueue: maxQueue,
		inflight: make(map[string]*flight),
		cache:    newLRUCache(entries),
	}
	s.work = sync.NewCond(&s.mu)
	s.stats.Workers = w
	for i := 0; i < w; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// worker drains the job queue until the service is closed AND the queue is
// empty — accepted jobs always execute, so no Submit waiter is stranded.
func (s *Service) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for len(s.queue) == 0 && !s.closed {
			s.work.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		job := s.queue[0]
		s.queue[0] = nil // release the closure (and its Spec clone) promptly
		s.queue = s.queue[1:]
		s.mu.Unlock()
		job()
		s.mu.Lock()
	}
}

// Close stops accepting submissions and waits for the pool to finish every
// job already accepted (running or queued), so no waiter is stranded.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.work.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// ErrClosed is returned for submissions to a closed service.
var ErrClosed = errors.New("service: closed")

// ErrBusy is returned when the job queue is full; the submission was not
// accepted and may be retried later.
var ErrBusy = errors.New("service: job queue full")

// RunError wraps a failure that happened while executing a scenario, as
// opposed to rejecting its spec — callers (the HTTP layer) use errors.As
// to distinguish a 5xx from a 4xx.
type RunError struct {
	Hash string
	Err  error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("service: run %.12s: %v", e.Hash, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// Submit runs one spec, serving from the cache or an in-flight duplicate
// when possible. It blocks until the report is available.
func (s *Service) Submit(sp *scenario.Spec) (Result, error) {
	hash, err := sp.Hash()
	if err == nil {
		// Serving policy, on top of spec validity: untrusted submissions
		// must fit the execution budget.
		err = sp.CheckBudget()
	}
	if err != nil {
		s.mu.Lock()
		s.stats.Errors++
		s.mu.Unlock()
		return Result{}, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Result{}, ErrClosed
	}
	if rep, ok := s.cache.get(hash); ok {
		s.stats.Hits++
		s.mu.Unlock()
		return Result{Hash: hash, Cached: true, Report: rep}, nil
	}
	if f, ok := s.inflight[hash]; ok {
		// Coalesce onto the running execution rather than queueing a
		// duplicate job.
		s.stats.Dedups++
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			return Result{}, f.err
		}
		return Result{Hash: hash, Cached: false, Report: f.report}, nil
	}
	// Backpressure: an unbounded queue would let distinct-spec floods grow
	// memory without limit. Checked before the flight is registered, so no
	// dedup waiter can attach to a submission that was never accepted.
	if len(s.queue) >= s.maxQueue {
		s.stats.Errors++
		s.mu.Unlock()
		return Result{}, ErrBusy
	}
	s.stats.Misses++
	f := &flight{done: make(chan struct{})}
	s.inflight[hash] = f
	s.stats.Queued++

	// The spec may be mutated by the caller after Submit returns for a
	// deduplicated waiter, so the executing job owns a private copy.
	run := sp.Clone()
	job := func() {
		defer close(f.done)
		s.mu.Lock()
		s.stats.Queued--
		s.stats.Executions++
		s.mu.Unlock()
		rep, err := runSpec(run)
		var data []byte
		if err == nil {
			data, err = rep.Encode()
		}
		s.mu.Lock()
		delete(s.inflight, hash)
		if err != nil {
			s.stats.Errors++
			f.err = &RunError{Hash: hash, Err: err}
		} else {
			f.report = data
			s.cache.put(hash, data)
		}
		s.mu.Unlock()
	}

	// Still under s.mu from the miss bookkeeping above: enqueue and wake a
	// worker atomically with the closed check, so an accepted job is
	// guaranteed to run.
	s.queue = append(s.queue, job)
	s.work.Signal()
	s.mu.Unlock()

	<-f.done
	if f.err != nil {
		return Result{}, f.err
	}
	return Result{Hash: hash, Cached: false, Report: f.report}, nil
}

// runSpec executes a spec, converting a panic anywhere in the simulator
// into an error so one bad submission cannot take down the daemon's worker
// pool.
func runSpec(sp *scenario.Spec) (rep *scenario.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("panic during run: %v", r)
		}
	}()
	return sp.Run()
}

// Lookup serves a cached report by hash without triggering execution. It
// does not touch the hit/miss counters: those account /run submissions
// only, and retrieval traffic would distort them.
func (s *Service) Lookup(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.get(hash)
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.cache.len()
	return st
}

// lruCache is a plain entry-capped LRU: map + recency list, guarded by the
// service mutex.
type lruCache struct {
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	data []byte
}

func newLRUCache(capEntries int) *lruCache {
	return &lruCache{cap: capEntries, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) ([]byte, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).data, true
}

func (c *lruCache) put(key string, data []byte) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).data = data
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, data: data})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }
