// Package service turns scenario execution into a served resource: a job
// queue drained by a fixed worker pool (the figures sweep-runner pattern),
// fronted by singleflight deduplication and an LRU result cache keyed by
// the spec's content hash. Because the simulation is deterministic, a hash
// fully identifies its report, so serving a cached or deduplicated result
// is indistinguishable from re-running the scenario — that invariant is
// what makes the cache sound, and internal/service's tests pin it.
//
// Concurrency model (DESIGN.md §17): the serving path holds no global
// lock. The job queue, the in-flight flight map, and the result cache each
// have their own lock; the counters are atomics snapshotted at /stats
// scrape time; the queue-wait histogram is sharded. The lock-ordering rule
// is flat: fmu may be held while taking the cache's lock, and nothing else
// nests — qmu, the cache lock, and the snapshot/store/trace locks are all
// leaves.
package service

import (
	"container/list"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"a4sim/internal/harness"
	"a4sim/internal/obs"
	"a4sim/internal/scenario"
	"a4sim/internal/stats"
	"a4sim/internal/store"
	"a4sim/internal/trace"
)

// Config sizes the service.
type Config struct {
	// Workers is the execution pool degree; 0 means GOMAXPROCS.
	Workers int
	// CacheEntries caps the result cache; 0 means 256.
	CacheEntries int
	// MaxQueue caps jobs waiting for a worker; submissions beyond it fail
	// fast with ErrBusy instead of growing memory without bound. 0 means
	// 4096 (one full-size sweep).
	MaxQueue int
	// SnapshotEntries caps the warm-state snapshot cache: full deep copies
	// of executed scenarios at their last measured second, keyed by the
	// spec's prefix hash, from which longer measurement windows fork and
	// continue instead of re-simulating the shared prefix. Each entry holds
	// a complete simulation image (several MB at the Skylake geometry), so
	// the cap is deliberately small. 0 means 8; negative disables snapshot
	// reuse entirely.
	SnapshotEntries int
	// Store, when non-nil, is the durable content-addressed object store
	// under the in-memory caches (internal/store). Executed reports, specs,
	// series, and warm snapshots spill to it; LRU misses fall back to it; a
	// restarted service rehydrates from it. Nil means memory-only serving,
	// exactly as before the store existed.
	Store *store.Store
	// TraceEntries caps the finished-request trace ring served by
	// GET /trace/<id> and /traces. 0 means 256.
	TraceEntries int
}

// Stats are the service's monotonic counters, served by /stats.
type Stats struct {
	Hits       uint64 `json:"hits"`       // served from the result cache
	Misses     uint64 `json:"misses"`     // required an execution
	Dedups     uint64 `json:"dedups"`     // coalesced onto an in-flight run
	Executions uint64 `json:"executions"` // scenario runs actually performed
	Errors     uint64 `json:"errors"`     // failed submissions
	Entries    int    `json:"entries"`    // current cache entries
	Workers    int    `json:"workers"`    // pool degree
	Queued     int    `json:"queued"`     // jobs waiting for a worker

	// SnapshotForks counts executions that continued from a cached warm
	// snapshot instead of re-simulating their prefix; SnapshotEntries is
	// the snapshot cache's current size.
	SnapshotForks   uint64 `json:"snapshot_forks"`
	SnapshotEntries int    `json:"snapshot_entries"`

	// StoreHits counts lookups served from the durable store after an
	// in-memory miss; StoreObjects and StoreQuarantined mirror the store's
	// index size and lifetime quarantine count. All zero without a store.
	StoreHits        uint64 `json:"store_hits"`
	StoreObjects     int    `json:"store_objects"`
	StoreQuarantined int64  `json:"store_quarantined"`

	// TraceDropped sums the controller event-log drops across executions:
	// events lost to each run's bounded ring. Nonzero means
	// GET /trace/events/<hash> tails are incomplete for some runs.
	TraceDropped int64 `json:"trace_dropped"`
}

// counters are the live form of Stats: independent atomics, so a /run can
// bump hits while a /stats scrape sums and an execution bumps misses, with
// no shared lock. Snapshots are per-field (not cross-field consistent),
// which monotonic counters tolerate by construction.
type counters struct {
	hits          atomic.Uint64
	misses        atomic.Uint64
	dedups        atomic.Uint64
	executions    atomic.Uint64
	errors        atomic.Uint64
	snapshotForks atomic.Uint64
	storeHits     atomic.Uint64
	queued        atomic.Int64
	traceDropped  atomic.Int64
}

// Result is one served submission.
type Result struct {
	// Hash is the spec's content address.
	Hash string
	// Cached reports whether the bytes came from the result cache (true) or
	// a fresh execution (false); deduplicated waiters see Cached=false, as
	// they paid for (a share of) the run.
	Cached bool
	// Report is the canonical report encoding; byte-identical for equal
	// hashes.
	Report []byte
	// Envelope, when non-nil, is the complete pre-encoded HTTP response
	// body ({"cached":...,"hash":...,"report":...} plus trailing newline)
	// for this result. The hot paths fill it — cache hits carry the
	// encode-once bytes stored beside the report, executions encode once
	// for submitter and all deduplicated waiters, a coordinator forwards
	// the backend's body verbatim — so the HTTP layer writes it out with
	// zero per-request marshalling. Nil falls back to encoding from the
	// other fields; the bytes are identical either way.
	Envelope []byte
}

// flight is one in-progress execution that concurrent identical
// submissions wait on. report/body/err are written only by the executing
// job (or failFlight) before done is closed; waiters read them only after
// <-done, so the channel close is the only synchronization needed.
type flight struct {
	done   chan struct{}
	report []byte
	body   []byte // pre-encoded cached:false response envelope
	err    error
}

// Service serves scenario runs.
type Service struct {
	workers  int
	maxQueue int
	wg       sync.WaitGroup

	// closed is checked lock-free at submission entry; it is only ever set
	// under qmu so the set serializes with enqueues (see Close).
	closed atomic.Bool

	// qmu guards the job queue; work signals queue growth or close.
	qmu   sync.Mutex
	work  *sync.Cond
	queue []func()

	// fmu guards the in-flight map. The register path re-checks the result
	// cache under fmu (jobs publish to the cache before clearing their
	// flight), so a submission can never miss both.
	fmu      sync.Mutex
	inflight map[string]*flight

	// cache is the result LRU; internally synchronized, read path never
	// blocks on writers (sync.RWMutex + atomic recency stamps).
	cache *lruCache

	// memo maps exact request body bytes to the content hash they parse
	// to — Parse and Hash are deterministic, so the mapping is immutable
	// and repeat bodies (the dominant traffic class) skip spec decoding
	// and hashing entirely.
	memo *bodyMemo

	ctr counters

	// snaps caches warm simulation state for prefix-shared continuation;
	// nil when disabled. It has its own lock: snapshot forking is heavy and
	// must not serialize the submission path.
	snaps *snapStore

	// disk is the durable object store under the in-memory caches; nil when
	// the service runs memory-only.
	disk *store.Store

	// queueWait records each job's enqueue-to-start wait (µs); sharded so
	// concurrent job starts don't contend, merged at scrape time.
	queueWait *stats.ShardedHistogram
	// traces retains finished request traces for GET /trace/<id>; streams
	// fans live series rows out to GET /series/<hash>/stream subscribers.
	// Both have their own (short-hold) locks.
	traces  *obs.Ring
	streams *obs.SeriesHub
}

// New starts a service with cfg's pool and cache.
func New(cfg Config) *Service {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	entries := cfg.CacheEntries
	if entries <= 0 {
		entries = 256
	}
	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = MaxSweepPoints
	}
	s := &Service{
		workers:   w,
		maxQueue:  maxQueue,
		inflight:  make(map[string]*flight),
		cache:     newLRUCache(entries),
		memo:      newBodyMemo(),
		disk:      cfg.Store,
		queueWait: stats.NewShardedHistogram(),
		traces:    obs.NewRing(cfg.TraceEntries),
		streams:   obs.NewSeriesHub(),
	}
	if cfg.SnapshotEntries >= 0 {
		se := cfg.SnapshotEntries
		if se == 0 {
			se = 8
		}
		s.snaps = newSnapStore(se)
	}
	s.work = sync.NewCond(&s.qmu)
	for i := 0; i < w; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// worker drains the job queue until the service is closed AND the queue is
// empty — accepted jobs always execute, so no Submit waiter is stranded.
func (s *Service) worker() {
	defer s.wg.Done()
	s.qmu.Lock()
	for {
		for len(s.queue) == 0 && !s.closed.Load() {
			s.work.Wait()
		}
		if len(s.queue) == 0 {
			s.qmu.Unlock()
			return
		}
		job := s.queue[0]
		s.queue[0] = nil // release the closure (and its Spec clone) promptly
		s.queue = s.queue[1:]
		s.qmu.Unlock()
		job()
		s.qmu.Lock()
	}
}

// Close stops accepting submissions and waits for the pool to finish every
// job already accepted (running or queued), so no waiter is stranded. The
// closed flag is set under qmu: an enqueue and the close serialize, so a
// job is either rejected with ErrClosed or guaranteed a worker drains it.
func (s *Service) Close() {
	s.qmu.Lock()
	if s.closed.Load() {
		s.qmu.Unlock()
		return
	}
	s.closed.Store(true)
	s.work.Broadcast()
	s.qmu.Unlock()
	s.wg.Wait()
}

// ErrClosed is returned for submissions to a closed service.
var ErrClosed = errors.New("service: closed")

// ErrBusy is returned when the job queue is full; the submission was not
// accepted and may be retried later.
var ErrBusy = errors.New("service: job queue full")

// RunError wraps a failure that happened while executing a scenario, as
// opposed to rejecting its spec — callers (the HTTP layer) use errors.As
// to distinguish a 5xx from a 4xx.
type RunError struct {
	Hash string
	Err  error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("service: run %.12s: %v", e.Hash, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// Submit runs one spec, serving from the cache or an in-flight duplicate
// when possible. It blocks until the report is available.
func (s *Service) Submit(sp *scenario.Spec) (Result, error) {
	return s.submit(sp, nil)
}

// SubmitTraced is Submit with per-request span recording: the serving
// path's seams (queue wait, warm, measure, store reads and writes,
// snapshot forks) are timed into tr. A nil trace costs one nil check per
// seam, so Submit simply passes nil.
func (s *Service) SubmitTraced(sp *scenario.Spec, tr *obs.Trace) (Result, error) {
	return s.submit(sp, tr)
}

// TraceRing exposes the finished-request trace ring to the HTTP layer.
func (s *Service) TraceRing() *obs.Ring { return s.traces }

// TraceJSON serves a retained trace's canonical body by ID.
func (s *Service) TraceJSON(id string) ([]byte, bool) {
	t, ok := s.traces.Get(id)
	if !ok {
		return nil, false
	}
	return t.JSON(), true
}

// RunCachedBody serves a /run whose exact body bytes have been seen before
// and whose result is still resident — the fleet-of-clients steady state —
// without parsing, validating, or hashing the spec. Sound because Parse,
// CheckBudget, and Hash are pure functions of the bytes: a body that
// previously parsed to hash H parses to H forever. Returns false (and
// touches nothing) whenever the full path must run.
func (s *Service) RunCachedBody(body []byte, tr *obs.Trace) (Result, bool) {
	if s.closed.Load() {
		return Result{}, false // let submit report ErrClosed
	}
	hash, ok := s.memo.get(body)
	if !ok {
		return Result{}, false
	}
	e, ok := s.cache.get(hash)
	if !ok {
		return Result{}, false
	}
	s.ctr.hits.Add(1)
	tr.Mark("cache_hit", "")
	return Result{Hash: hash, Cached: true, Report: e.data, Envelope: e.hitBody}, true
}

// RememberBody records that body parses to hash, feeding RunCachedBody.
func (s *Service) RememberBody(body []byte, hash string) {
	s.memo.put(body, hash)
}

func (s *Service) submit(sp *scenario.Spec, tr *obs.Trace) (Result, error) {
	hash, err := sp.Hash()
	if err == nil {
		// Serving policy, on top of spec validity: untrusted submissions
		// must fit the execution budget.
		err = sp.CheckBudget()
	}
	if err != nil {
		s.ctr.errors.Add(1)
		return Result{}, err
	}

	if s.closed.Load() {
		return Result{}, ErrClosed
	}
	if e, ok := s.cache.get(hash); ok {
		s.ctr.hits.Add(1)
		tr.Mark("cache_hit", "")
		return Result{Hash: hash, Cached: true, Report: e.data, Envelope: e.hitBody}, nil
	}
	s.fmu.Lock()
	if f, ok := s.inflight[hash]; ok {
		// Coalesce onto the running execution rather than queueing a
		// duplicate job.
		s.ctr.dedups.Add(1)
		s.fmu.Unlock()
		dw := tr.Begin("dedup_wait")
		<-f.done
		dw.End()
		if f.err != nil {
			return Result{}, f.err
		}
		return Result{Hash: hash, Cached: false, Report: f.report, Envelope: f.body}, nil
	}
	// The executing job publishes its result to the cache before clearing
	// its flight, so a submission that missed the cache and then found no
	// flight re-checks the cache here — under fmu — and cannot miss both.
	if e, ok := s.cache.get(hash); ok {
		s.ctr.hits.Add(1)
		s.fmu.Unlock()
		tr.Mark("cache_hit", "")
		return Result{Hash: hash, Cached: true, Report: e.data, Envelope: e.hitBody}, nil
	}
	// Disk fallback before scheduling an execution: a restarted (or
	// memory-evicted) service serves durably stored results instead of
	// re-simulating them. Held under fmu — rare (memory miss), and the
	// alternative is a multi-second execution.
	if s.disk != nil {
		sr := tr.Begin("store_read")
		res, ok := s.diskResult(hash)
		sr.End()
		if ok {
			s.ctr.hits.Add(1)
			s.fmu.Unlock()
			return res, nil
		}
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[hash] = f
	s.fmu.Unlock()

	// The spec may be mutated by the caller after Submit returns for a
	// deduplicated waiter, so the executing job owns a private copy.
	run := sp.Clone()
	qw := tr.Begin("queue_wait")
	enqueued := time.Now()
	job := func() {
		defer close(f.done)
		qw.End()
		wait := time.Since(enqueued)
		s.ctr.queued.Add(-1)
		s.ctr.executions.Add(1)
		s.queueWait.Observe(wait.Microseconds())
		// A run that records a series streams it: the publisher is live from
		// before the first simulated second, so a subscriber attaching
		// mid-run replays from row 0.
		var pub *obs.SeriesPub
		if run.Series != nil {
			pub = s.streams.Open(hash)
		}
		rep, events, evDropped, err := s.runSpec(run, tr, pub)
		var data, spec, series []byte
		if err == nil {
			data, err = rep.Encode()
		}
		if err == nil && rep.Series != nil {
			// The window's series is stored beside the report under the same
			// content address, so GET /series/<hash> serves it without the
			// client re-parsing the (much larger) report.
			series, err = rep.Series.Encode()
		}
		if err == nil {
			// The canonical spec is indexed by hash so /extend can re-derive
			// longer windows of a run from its content address alone.
			spec, err = run.Canonical()
		}
		if err == nil && s.disk != nil {
			// Spill to the durable store, report last: the report is the
			// commit point the disk-fallback path keys on, so a crash between
			// Puts leaves at worst auxiliary objects with no report — never a
			// servable report whose spec cannot be re-derived. Put errors are
			// swallowed: the disk plane accelerates restarts, it does not
			// gate serving from memory.
			sw := tr.Begin("store_write")
			s.disk.Put(store.KindSpec, hash, spec)
			if series != nil {
				s.disk.Put(store.KindSeries, hash, series)
			}
			s.disk.Put(store.KindReport, hash, data)
			sw.End()
		}
		if err != nil {
			s.ctr.errors.Add(1)
			f.err = &RunError{Hash: hash, Err: err}
		} else {
			f.report = data
			f.body = encodeResultEnvelope(hash, false, data)
			s.ctr.traceDropped.Add(evDropped)
			// Publish before clearing the flight (below): between the two, a
			// new submission either attaches to this flight or hits the
			// cache, never both-miss.
			s.cache.put(hash, data, spec, series, &eventLog{events: events, dropped: evDropped})
		}
		s.fmu.Lock()
		delete(s.inflight, hash)
		s.fmu.Unlock()
		// The stream ends only after the cache put: a subscriber that sees
		// the terminal message can immediately GET /series and find the
		// stored bytes it should compare against.
		if pub != nil {
			if err == nil && series != nil {
				pub.Finish(series)
			} else {
				pub.Abort("execution failed")
			}
		}
	}

	// Backpressure and the closed check ride the enqueue lock: an accepted
	// job is guaranteed a worker (workers drain the queue before exiting),
	// and a rejected one fails its flight so any dedup waiter that attached
	// in the window gets the same retryable error.
	s.qmu.Lock()
	if s.closed.Load() {
		s.qmu.Unlock()
		qw.End()
		s.failFlight(hash, f, ErrClosed)
		return Result{}, ErrClosed
	}
	if len(s.queue) >= s.maxQueue {
		s.qmu.Unlock()
		qw.End()
		s.ctr.errors.Add(1)
		s.failFlight(hash, f, ErrBusy)
		return Result{}, ErrBusy
	}
	s.ctr.misses.Add(1)
	s.ctr.queued.Add(1)
	s.queue = append(s.queue, job)
	s.work.Signal()
	s.qmu.Unlock()

	<-f.done
	if f.err != nil {
		return Result{}, f.err
	}
	return Result{Hash: hash, Cached: false, Report: f.report, Envelope: f.body}, nil
}

// failFlight delivers err to a flight whose job was never enqueued and
// removes it from the in-flight map (unless a newer flight took the slot).
func (s *Service) failFlight(hash string, f *flight, err error) {
	f.err = err
	s.fmu.Lock()
	if s.inflight[hash] == f {
		delete(s.inflight, hash)
	}
	s.fmu.Unlock()
	close(f.done)
}

// runSpec executes a spec, converting a panic anywhere in the simulator
// into an error so one bad submission cannot take down the daemon's worker
// pool.
func (s *Service) runSpec(sp *scenario.Spec, tr *obs.Trace, pub *obs.SeriesPub) (rep *scenario.Report, events []trace.Event, dropped int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, events, dropped, err = nil, nil, 0, fmt.Errorf("panic during run: %v", r)
		}
	}()
	return s.execute(sp, tr, pub)
}

// snapshotEligible gates snapshot reuse to whole-second windows: splitting a
// run at a non-integer boundary would round the engine's epoch counts
// differently from an uninterrupted run, breaking byte-identity.
func snapshotEligible(sp *scenario.Spec) bool {
	return sp.WarmupSec == math.Trunc(sp.WarmupSec) &&
		sp.MeasureSec == math.Trunc(sp.MeasureSec) && sp.MeasureSec >= 1
}

// execute runs one spec, continuing from a cached warm snapshot when one
// shares the spec's prefix (identical scenario up to some point of the
// measurement window). Because forked execution is byte-identical to fresh
// execution (the harness snapshot/fork contract, pinned by this package's
// tests), the serving path is free to choose either and the reports cannot
// differ. Fresh runs deposit their end-of-window state back into the
// snapshot cache so later, longer windows extend instead of restarting.
//
// The observability taps ride the same seams: spans around warm, measure,
// fork, and store reads; a fresh controller event log per execution (Fork
// deliberately does not carry one, so a forked continuation records only
// its own seconds); and, when pub is non-nil, every appended series row
// published to live stream subscribers.
func (s *Service) execute(sp *scenario.Spec, tr *obs.Trace, pub *obs.SeriesPub) (*scenario.Report, []trace.Event, int64, error) {
	run := sp.Clone()
	if err := run.Normalize(); err != nil {
		return nil, nil, 0, err
	}
	hash, err := run.Hash()
	if err != nil {
		return nil, nil, 0, err
	}
	// attach wires the per-execution taps onto a started (or forked)
	// scenario and returns its event log.
	attach := func(sc *harness.Scenario) *trace.Log {
		tlog := trace.NewLog(0)
		if sc.Controller != nil {
			sc.Controller.SetTraceLog(tlog)
		}
		if pub != nil {
			pub.Publish(sc.Monitor.Series()) // replay any forked prefix rows
			sc.Monitor.SetRowHook(pub.Publish)
		}
		return tlog
	}
	if s.snaps == nil || !snapshotEligible(run) {
		sc, err := run.Start()
		if err != nil {
			return nil, nil, 0, err
		}
		tlog := attach(sc)
		w := tr.Begin("warm")
		sc.Warm(run.WarmupSec)
		w.End()
		sc.BeginMeasure()
		m := tr.Begin("measure")
		sc.Measure(run.MeasureSec)
		m.End()
		return scenario.FromResult(run, hash, sc.EndMeasure()), tlog.Events(), tlog.Dropped, nil
	}
	prefix, err := run.PrefixHash()
	if err != nil {
		return nil, nil, 0, err
	}
	canon, err := run.Canonical()
	if err != nil {
		return nil, nil, 0, err
	}
	snap, measured, spec, ok := s.snaps.get(prefix)
	if !ok && s.disk != nil {
		// Memory miss: a restarted service rehydrates the warm state a
		// previous instance spilled to disk. Any failure — missing object,
		// quarantined bytes, version or structure mismatch — falls through
		// to a plain fresh run.
		sr := tr.Begin("store_read")
		if snap, measured, spec, ok = s.diskSnapshot(prefix); ok {
			s.ctr.storeHits.Add(1)
		}
		sr.End()
	}
	if ok && measured <= run.MeasureSec {
		s.ctr.snapshotForks.Add(1)
		fk := tr.Begin("snapshot_fork")
		sc := snap.Fork()
		fk.End()
		tlog := attach(sc)
		m := tr.Begin("measure")
		sc.Measure(run.MeasureSec - measured)
		m.End()
		s.depositSnap(prefix, sc.Snapshot(), run.MeasureSec, spec)
		return scenario.FromResult(run, hash, sc.EndMeasure()), tlog.Events(), tlog.Dropped, nil
	}
	sc, err := run.Start()
	if err != nil {
		return nil, nil, 0, err
	}
	tlog := attach(sc)
	w := tr.Begin("warm")
	sc.Warm(run.WarmupSec)
	w.End()
	sc.BeginMeasure()
	m := tr.Begin("measure")
	sc.Measure(run.MeasureSec)
	m.End()
	// Snapshot before closing the window: the stored state must be
	// continuable, and EndMeasure only reads the accumulators.
	s.depositSnap(prefix, sc.Snapshot(), run.MeasureSec, canon)
	return scenario.FromResult(run, hash, sc.EndMeasure()), tlog.Events(), tlog.Dropped, nil
}

// ErrUnknownHash is returned by Extend for a content address with no
// indexed spec (never run here, or evicted).
var ErrUnknownHash = errors.New("service: unknown run hash")

// Extend re-runs a previously served spec — addressed by its content hash —
// with a longer (or any different) measurement window, without the client
// resending the spec. The continuation goes through the normal submission
// path, so it dedups, caches, and — when the warm snapshot of the original
// run is still resident — forks and simulates only the additional seconds.
// The result is byte-identical to running the extended spec from scratch.
func (s *Service) Extend(hash string, measureSec float64) (Result, error) {
	return s.extend(hash, measureSec, nil)
}

// ExtendTraced is Extend with per-request span recording.
func (s *Service) ExtendTraced(hash string, measureSec float64, tr *obs.Trace) (Result, error) {
	return s.extend(hash, measureSec, tr)
}

func (s *Service) extend(hash string, measureSec float64, tr *obs.Trace) (Result, error) {
	if measureSec <= 0 {
		return Result{}, fmt.Errorf("service: extend needs a positive measure_sec, got %g", measureSec)
	}
	if measureSec > scenario.MaxWindowSec {
		return Result{}, fmt.Errorf("service: extend measure_sec %g exceeds %d", measureSec, scenario.MaxWindowSec)
	}
	spec, ok := s.cache.specOf(hash)
	if !ok && s.disk != nil {
		// The run may predate this process: rehydrate its index entry from
		// the durable store, then extend as if it had never left memory.
		if _, dok := s.diskResult(hash); dok {
			spec, ok = s.cache.specOf(hash)
		}
	}
	if !ok {
		return Result{}, ErrUnknownHash
	}
	sp, err := scenario.Parse(spec)
	if err != nil {
		return Result{}, fmt.Errorf("service: corrupt indexed spec for %.12s: %w", hash, err)
	}
	sp.MeasureSec = measureSec
	return s.submit(sp, tr)
}

// TraceEvents serves the controller event log recorded when a cached run
// executed, as canonical JSON, trimmed to the last n events when n > 0. It
// returns false for unknown hashes and for entries without a log (runs
// rehydrated from disk — event logs are not spilled — or cached before
// logging existed).
func (s *Service) TraceEvents(hash string, n int) ([]byte, bool) {
	events, dropped, ok := s.cache.eventsOf(hash)
	if !ok {
		return nil, false
	}
	if n > 0 && n < len(events) {
		events = events[len(events)-n:]
	}
	data, err := trace.EncodeEvents(events, dropped)
	if err != nil {
		return nil, false
	}
	return data, true
}

// snapStore is a bounded LRU of warm simulation snapshots keyed by prefix
// hash. One entry per prefix: put keeps the longest-measured state, since
// any request at or past it can continue from there while earlier states
// would re-simulate more.
type snapStore struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type snapEntry struct {
	key      string
	snap     *harness.Snapshot
	measured float64
	spec     []byte // canonical spec of a run sharing the prefix, for snapshot shipping
}

func newSnapStore(capEntries int) *snapStore {
	return &snapStore{cap: capEntries, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the stored snapshot, its measured seconds, and the canonical
// spec it belongs to. The snapshot is immutable; callers fork it outside
// the store's lock.
func (c *snapStore) get(key string) (*harness.Snapshot, float64, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, 0, nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*snapEntry)
	return e.snap, e.measured, e.spec, true
}

// put stores a snapshot unless a longer-measured one for the same prefix is
// already resident (concurrent shorter runs must not clobber it). It
// reports whether the entry was stored or advanced — the signal the caller
// uses to mirror the state to disk.
func (c *snapStore) put(key string, snap *harness.Snapshot, measured float64, spec []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*snapEntry)
		advanced := measured >= e.measured
		if advanced {
			e.snap, e.measured, e.spec = snap, measured, spec
		}
		c.ll.MoveToFront(el)
		return advanced
	}
	c.items[key] = c.ll.PushFront(&snapEntry{key: key, snap: snap, measured: measured, spec: spec})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*snapEntry).key)
	}
	return true
}

func (c *snapStore) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Lookup serves a cached report by hash without triggering execution. It
// does not touch the hit/miss counters: those account /run submissions
// only, and retrieval traffic would distort them.
func (s *Service) Lookup(hash string) ([]byte, bool) {
	if e, ok := s.cache.get(hash); ok {
		return e.data, true
	}
	if s.disk != nil {
		if res, ok := s.diskResult(hash); ok {
			return res.Report, true
		}
	}
	return nil, false
}

// Series serves a cached run's per-second telemetry by content address.
// It returns false both for unknown hashes and for runs whose spec carried
// no series block — either way there is nothing time-resolved to serve.
// Like Lookup, retrieval does not touch the hit/miss counters.
func (s *Service) Series(hash string) ([]byte, bool) {
	if series, ok := s.cache.seriesOf(hash); ok {
		return series, true
	}
	// Only touch disk for hashes memory knows nothing about: a resident
	// entry without a series means the run recorded none, and disk cannot
	// know better.
	if !s.cache.has(hash) && s.disk != nil {
		if _, ok := s.diskResult(hash); ok {
			return s.cache.seriesOf(hash)
		}
	}
	return nil, false
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Hits:          s.ctr.hits.Load(),
		Misses:        s.ctr.misses.Load(),
		Dedups:        s.ctr.dedups.Load(),
		Executions:    s.ctr.executions.Load(),
		Errors:        s.ctr.errors.Load(),
		Entries:       s.cache.len(),
		Workers:       s.workers,
		Queued:        int(s.ctr.queued.Load()),
		SnapshotForks: s.ctr.snapshotForks.Load(),
		StoreHits:     s.ctr.storeHits.Load(),
		TraceDropped:  s.ctr.traceDropped.Load(),
	}
	if s.snaps != nil {
		st.SnapshotEntries = s.snaps.len()
	}
	if s.disk != nil {
		st.StoreObjects = s.disk.Len()
		st.StoreQuarantined = s.disk.Quarantined()
	}
	return st
}

// lruCache is the result cache: an RWMutex-guarded map whose entries are
// immutable once published (a re-put replaces the entry object), plus an
// atomic recency stamp per entry. The hot read path takes only the read
// lock — it never reorders a list or otherwise writes shared state, so
// concurrent cache hits proceed in parallel and never block behind one
// another. Eviction (rare: one candidate scan per insert over capacity)
// happens under the write lock by discarding the minimum-stamp entry —
// exact LRU semantics, different bookkeeping.
type lruCache struct {
	mu    sync.RWMutex
	cap   int
	clock atomic.Uint64 // global recency stamp source
	items map[string]*lruEntry
}

// lruEntry is one cached result. All byte fields are immutable after the
// entry is published; only the recency stamp is written on reads.
type lruEntry struct {
	data    []byte
	spec    []byte // canonical spec encoding, for Extend
	series  []byte // canonical series encoding, for GET /series/<hash> (nil when not recorded)
	hitBody []byte // pre-encoded cached:true response envelope for /run hits

	// events is the controller event log captured when this entry executed
	// here; nil for entries rehydrated from disk (logs are not spilled).
	events *eventLog

	used atomic.Uint64 // recency stamp; higher = more recently used
}

// eventLog is one execution's retained controller events plus how many its
// bounded ring dropped.
type eventLog struct {
	events  []trace.Event
	dropped int64
}

func newLRUCache(capEntries int) *lruCache {
	return &lruCache{cap: capEntries, items: make(map[string]*lruEntry)}
}

// touch refreshes an entry's recency. Stamps come from one atomic clock,
// so concurrent touches race only over which of two adjacent stamps wins —
// either order is a correct LRU history.
func (c *lruCache) touch(e *lruEntry) {
	e.used.Store(c.clock.Add(1))
}

// get returns the entry under key, refreshing recency.
func (c *lruCache) get(key string) (*lruEntry, bool) {
	c.mu.RLock()
	e, ok := c.items[key]
	c.mu.RUnlock()
	if !ok {
		return nil, false
	}
	c.touch(e)
	return e, true
}

// specOf returns the canonical spec indexed under key without touching
// recency (an Extend should not pin its source entry hot).
func (c *lruCache) specOf(key string) ([]byte, bool) {
	c.mu.RLock()
	e, ok := c.items[key]
	c.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return e.spec, true
}

// has reports whether key is resident, without touching recency.
func (c *lruCache) has(key string) bool {
	c.mu.RLock()
	_, ok := c.items[key]
	c.mu.RUnlock()
	return ok
}

// seriesOf returns the series stored beside key's report, refreshing
// recency like get: series retrieval is result traffic, and a series-hot
// entry should survive eviction exactly as long as a report-hot one.
func (c *lruCache) seriesOf(key string) ([]byte, bool) {
	c.mu.RLock()
	e, ok := c.items[key]
	c.mu.RUnlock()
	if !ok || e.series == nil {
		return nil, false
	}
	c.touch(e)
	return e.series, true
}

// put publishes a result under key and returns the resident entry. An
// existing entry is replaced wholesale (entries are immutable), keeping
// its event log when the incoming one is nil — a disk rehydration must not
// erase the executed-here log.
func (c *lruCache) put(key string, data, spec, series []byte, events *eventLog) *lruEntry {
	e := &lruEntry{
		data:    data,
		spec:    spec,
		series:  series,
		hitBody: encodeResultEnvelope(key, true, data),
		events:  events,
	}
	c.touch(e)
	c.mu.Lock()
	if old, ok := c.items[key]; ok && events == nil {
		e.events = old.events
	}
	c.items[key] = e
	for len(c.items) > c.cap {
		c.evictOldestLocked()
	}
	c.mu.Unlock()
	return e
}

// evictOldestLocked discards the minimum-stamp entry. O(entries), but runs
// only when an insert exceeds capacity — once per cached execution at
// steady state, against a capped (default 256) map.
func (c *lruCache) evictOldestLocked() {
	var oldestKey string
	oldest := uint64(math.MaxUint64)
	for k, e := range c.items {
		if u := e.used.Load(); u < oldest {
			oldest = u
			oldestKey = k
		}
	}
	delete(c.items, oldestKey)
}

// eventsOf returns the controller event log captured at key's execution,
// without touching recency (event retrieval is diagnostics, not serving).
func (c *lruCache) eventsOf(key string) ([]trace.Event, int64, bool) {
	c.mu.RLock()
	e, ok := c.items[key]
	c.mu.RUnlock()
	if !ok || e.events == nil {
		return nil, 0, false
	}
	return e.events.events, e.events.dropped, true
}

func (c *lruCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.items)
}

// bodyMemo is a bounded map from exact request-body bytes to the content
// hash the body parses to. The mapping is deterministic and therefore
// never invalidated; the bound only caps memory. Lookups take the read
// lock and allocate nothing (map[string] probed with a []byte key).
type bodyMemo struct {
	mu sync.RWMutex
	m  map[string]string
}

const (
	// memoMaxEntries caps the memo; beyond it an arbitrary entry is
	// evicted (map iteration order), which is effectively random — fine,
	// since any entry can be rebuilt by one parse.
	memoMaxEntries = 4096
	// memoMaxBody caps memoized body size: popular request bodies are
	// ~1 KiB, and memoMaxEntries * memoMaxBody bounds worst-case memory.
	memoMaxBody = 8 << 10
)

func newBodyMemo() *bodyMemo {
	return &bodyMemo{m: make(map[string]string)}
}

func (b *bodyMemo) get(body []byte) (string, bool) {
	b.mu.RLock()
	h, ok := b.m[string(body)] // no alloc: map lookup with converted key
	b.mu.RUnlock()
	return h, ok
}

func (b *bodyMemo) put(body []byte, hash string) {
	if len(body) > memoMaxBody {
		return
	}
	b.mu.Lock()
	if _, ok := b.m[string(body)]; !ok {
		for len(b.m) >= memoMaxEntries {
			for k := range b.m {
				delete(b.m, k)
				break
			}
		}
		b.m[string(body)] = hash
	}
	b.mu.Unlock()
}
