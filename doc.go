// Package a4sim is a from-scratch Go reproduction of "A4:
// Microarchitecture-Aware LLC Management for Datacenter Servers with
// Emerging I/O Devices" (ISCA 2025).
//
// The repository contains a cycle-approximate simulation of a Skylake-SP
// class server (non-inclusive LLC with an inclusive directory, DDIO, CAT,
// PCIe ports with the hidden per-port DCA knob, a 100 Gbps NIC and an NVMe
// RAID-0 array), the paper's workloads as synthetic traffic generators, the
// A4 runtime LLC-management framework itself, and a harness that regenerates
// every figure of the paper. See README.md for a tour and DESIGN.md for the
// system inventory.
//
// The per-access hot path stores cache and directory state in packed
// structure-of-arrays form (one 64-bit word per slot plus per-set LRU
// permutation and valid-bitmask words; see PERF.md for the profile-driven
// design), and the figure layer executes independent sweep points on a
// worker pool sized by figures.Options.Workers — deterministically, since
// every point owns its engine and seeded RNGs.
//
// Experiments are declarative: internal/scenario describes a scenario as a
// JSON spec with a workload-constructor registry, canonical encoding, and a
// stable content hash, and every binary and example builds its scenarios
// through specs (builtin mixes ship embedded in the package). On top of
// that, internal/service and cmd/a4serve serve scenario runs over HTTP with
// a worker pool, singleflight deduplication, and an LRU result cache keyed
// by spec hash — determinism makes cache hits byte-identical to fresh runs.
//
// Simulation state is forkable: every layer implements a deep-copy
// contract composed by harness.Scenario.Fork/Snapshot, with forked
// execution byte-identical to fresh execution (DESIGN.md §10). Sweeps
// whose points share a prefix warm it once and fork per point, and
// a4serve caches warm snapshots so POST /extend and measure-window sweep
// rows simulate only their additional seconds.
//
// Build with the included go.mod (module a4sim); scripts/bench.sh records
// benchmark snapshots (including a4serve's cache-served throughput and
// the warm-state-reuse ratio sweep_fork_speedup) as BENCH_<date>.json.
package a4sim
