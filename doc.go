// Package a4sim is a from-scratch Go reproduction of "A4:
// Microarchitecture-Aware LLC Management for Datacenter Servers with
// Emerging I/O Devices" (ISCA 2025).
//
// The repository contains a cycle-approximate simulation of a Skylake-SP
// class server (non-inclusive LLC with an inclusive directory, DDIO, CAT,
// PCIe ports with the hidden per-port DCA knob, a 100 Gbps NIC and an NVMe
// RAID-0 array), the paper's workloads as synthetic traffic generators, the
// A4 runtime LLC-management framework itself, and a harness that regenerates
// every figure of the paper. See README.md for a tour and DESIGN.md for the
// system inventory.
package a4sim
